// Observability-layer microbenchmarks (google-benchmark, real wall-clock):
// the cost contract of the always-on instrumentation, measured.
//
//   - BM_SpanSiteDisabled      the one relaxed load + branch every disabled
//                              span site pays — the overhead every query
//                              carries whether or not anyone is watching
//   - BM_SpanRecordEnabled     full span record (two clock reads + ring
//                              store) with tracing on
//   - BM_InstantRecordEnabled  instant-event record (steal/mutation events)
//   - BM_CounterInc            one metrics counter increment
//   - BM_HistogramObserve      one histogram observation (bucket search +
//                              two atomic adds)
//   - BM_MetricsRender         /metrics Prometheus render latency at 10/100
//                              registered instruments (what a scrape costs)
//   - BM_MetricsJsonRender     /metrics.json render at the same sizes
//   - BM_HandleDebugQueries    /debug/queries render with a full query ring
//   - BM_ChargeSiteDisabled    the one relaxed load + branch every disabled
//                              resource-accounting site pays
//   - BM_ChargeTransient       peak-visible transient charge with accounting
//                              on, query + operator blocks installed (the
//                              kernel-output-growth hot path)
//   - BM_BillTask              one scheduler task billed to its query and
//                              operator (the task-epilogue hot path)
//
// The trajectory gate (tools/bench_trend.py vs BENCH_obs.json) watches
// BM_SpanSiteDisabled and the render latencies: the disabled site must stay
// in the ~1ns regime and a scrape must stay far below a morsel, or the
// "observability never perturbs execution" story quietly rots. The
// accounting rows extend the same contract to resource_tracker.h: disabled
// ~1ns, enabled a handful of relaxed atomic adds.
//
// Run: build/bench_obs [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/resource_tracker.h"
#include "obs/trace.h"

namespace apq {
namespace {

void BM_SpanSiteDisabled(benchmark::State& state) {
  obs::SetTraceEnabled(false);
  for (auto _ : state) {
    obs::SpanScope span(obs::SpanKind::kOperator, "bench-op", 1, 2);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanSiteDisabled);

void BM_SpanRecordEnabled(benchmark::State& state) {
  obs::SetTraceEnabled(true);
  for (auto _ : state) {
    obs::SpanScope span(obs::SpanKind::kOperator, "bench-op", 1, 2);
    benchmark::DoNotOptimize(&span);
  }
  obs::SetTraceEnabled(false);
  obs::ClearTraceBuffers();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecordEnabled);

void BM_InstantRecordEnabled(benchmark::State& state) {
  obs::SetTraceEnabled(true);
  for (auto _ : state) {
    obs::EmitInstant(obs::SpanKind::kSteal, "steal", 1, 2);
  }
  obs::SetTraceEnabled(false);
  obs::ClearTraceBuffers();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstantRecordEnabled);

void BM_CounterInc(benchmark::State& state) {
  obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("bench_obs_counter");
  for (auto _ : state) c->Inc();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "bench_obs_hist", obs::Histogram::LatencyBoundsNs());
  double v = 250.0;
  for (auto _ : state) {
    h->Observe(v);
    v = v < 1e9 ? v * 1.001 : 250.0;  // walk the bucket ladder
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

// Registers `n` instruments once (registry instruments are process-lifetime;
// re-registration returns the cached pointer, so repeated bench runs don't
// grow the registry beyond the first).
void PopulateRegistry(int n) {
  auto& reg = obs::MetricsRegistry::Global();
  for (int i = 0; i < n; ++i) {
    const std::string suffix = std::to_string(i);
    reg.GetCounter("bench_obs_fill_counter_" + suffix)->Inc(i);
    reg.GetGauge("bench_obs_fill_gauge_" + suffix)->Set(i);
    obs::Histogram* h = reg.GetHistogram("bench_obs_fill_hist_" + suffix,
                                         obs::Histogram::LatencyBoundsNs());
    h->Observe(1000.0 * (i + 1));
  }
}

void BM_MetricsRender(benchmark::State& state) {
  PopulateRegistry(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    int status = 0;
    std::string content_type, body;
    obs::HttpExporter::Handle("/metrics", &status, &content_type, &body);
    benchmark::DoNotOptimize(body.data());
    bytes = body.size();
  }
  state.counters["body_bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations());
}
// range(0) = instruments of each type registered before rendering.
BENCHMARK(BM_MetricsRender)->Arg(10)->Arg(100);

void BM_MetricsJsonRender(benchmark::State& state) {
  PopulateRegistry(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    int status = 0;
    std::string content_type, body;
    obs::HttpExporter::Handle("/metrics.json", &status, &content_type, &body);
    benchmark::DoNotOptimize(body.data());
    bytes = body.size();
  }
  state.counters["body_bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsJsonRender)->Arg(10)->Arg(100);

void BM_HandleDebugQueries(benchmark::State& state) {
  // A full ring of plausible records: what /debug/queries costs once the
  // process has been serving queries for a while.
  obs::QueryLog::Global().Clear();
  for (uint64_t i = 1; i <= obs::kQueryLogCapacity; ++i) {
    obs::QueryRecord rec;
    rec.id = i;
    rec.kind = i % 3 == 0 ? "adaptive" : "plan";
    rec.wall_ns = 1e6 + static_cast<double>(i);
    rec.time_ns = 5e5;
    rec.rows = 1000 * i;
    rec.runs = rec.kind == "adaptive" ? 7 : 1;
    rec.mutations = rec.kind == "adaptive" ? 4 : 0;
    obs::QueryLog::Global().Push(rec);
  }
  size_t bytes = 0;
  for (auto _ : state) {
    int status = 0;
    std::string content_type, body;
    obs::HttpExporter::Handle("/debug/queries", &status, &content_type,
                              &body);
    benchmark::DoNotOptimize(body.data());
    bytes = body.size();
  }
  state.counters["body_bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations());
  obs::QueryLog::Global().Clear();
}
BENCHMARK(BM_HandleDebugQueries);

void BM_ChargeSiteDisabled(benchmark::State& state) {
  obs::SetAccountingEnabled(false);
  for (auto _ : state) {
    obs::ChargeTransient(4096);
  }
  obs::SetAccountingEnabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChargeSiteDisabled);

void BM_ChargeTransient(benchmark::State& state) {
  // The realistic shape: a query id and an operator block are installed, so
  // the charge fans out to the query block, the operator block, and the
  // process gauge — the kernel-output-growth path under a running query.
  obs::SetAccountingEnabled(true);
  const uint64_t qid = 0xBE7C0FFEE;
  obs::QueryIdScope qid_scope(qid);
  obs::OpAcct acct;
  obs::OpAcctScope acct_scope(&acct);
  for (auto _ : state) {
    obs::ChargeTransient(4096);
  }
  obs::FinishQuery(qid);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChargeTransient);

void BM_BillTask(benchmark::State& state) {
  // The scheduler task epilogue: bill one finished morsel task's duration
  // and queue-wait to its query and operator blocks.
  obs::SetAccountingEnabled(true);
  const uint64_t qid = 0xBE7C0FFEF;
  obs::OpAcct acct;
  for (auto _ : state) {
    obs::BillTask(qid, &acct, 25000.0, 400.0);
  }
  obs::FinishQuery(qid);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BillTask);

}  // namespace
}  // namespace apq

BENCHMARK_MAIN();
