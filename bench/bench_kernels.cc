// Execution-backend microbenchmarks (google-benchmark, real wall-clock):
// the scalar row-at-a-time interpreter vs the vectorized selection-vector
// kernels, and serial vs thread-pool execution of exchange-parallelized
// plans. These are the hardware-truth numbers behind the simulated figures;
// baselines are recorded in CHANGES.md.
//
// Run: build/bench_kernels [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include "exec/evaluator.h"
#include "heuristic/parallelizer.h"
#include "exec/kernels.h"
#include "plan/builder.h"
#include "util/rng.h"

namespace apq {
namespace {

struct Fixture {
  ColumnPtr ints, floats, fk, pk;
  Fixture() {
    Rng rng(42);
    const uint64_t n = 1 << 21;
    std::vector<int64_t> iv(n), fkv(n), pkv(1 << 14);
    std::vector<double> fv(n);
    for (auto& v : iv) v = rng.UniformRange(0, 999);
    for (auto& v : fkv) v = rng.UniformRange(0, (1 << 14) - 1);
    for (auto& v : fv) v = rng.NextDouble();
    for (size_t i = 0; i < pkv.size(); ++i) pkv[i] = static_cast<int64_t>(i);
    ints = Column::MakeInt64("ints", std::move(iv));
    floats = Column::MakeFloat64("floats", std::move(fv));
    fk = Column::MakeInt64("fk", std::move(fkv));
    pk = Column::MakeInt64("pk", std::move(pkv));
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

Evaluator MakeEval(bool use_kernels, int threads = 1) {
  return Evaluator(ExecOptions{use_kernels, threads});
}

// ---- select: dense scan ----------------------------------------------------
// range(0) = inclusive upper bound on values in [0,999] -> selectivity/10.

void BM_SelectDense(benchmark::State& state, bool use_kernels) {
  Evaluator eval = MakeEval(use_kernels);
  PlanBuilder b("sel");
  int sel = b.Select(F().ints.get(),
                     Predicate::RangeI64(0, state.range(0)));
  QueryPlan plan = b.Result(sel);
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  state.SetItemsProcessed(state.iterations() * F().ints->size());
}
void BM_SelectDenseScalar(benchmark::State& s) { BM_SelectDense(s, false); }
void BM_SelectDenseVectorized(benchmark::State& s) { BM_SelectDense(s, true); }
BENCHMARK(BM_SelectDenseScalar)->Arg(99)->Arg(499)->Arg(899);
BENCHMARK(BM_SelectDenseVectorized)->Arg(99)->Arg(499)->Arg(899);

// ---- select hot loop, no plan machinery ------------------------------------
// The raw scalar inner loop (per-row lambda re-dispatching on predicate kind,
// push_back output) vs the SelectDense kernel, on the same column.

void BM_SelectLoopScalar(benchmark::State& state) {
  const Column& col = *F().ints;
  const int64_t hi = state.range(0);
  Predicate pred = Predicate::RangeI64(0, hi);
  for (auto _ : state) {
    std::vector<oid> out;
    auto test = [&](oid row) -> bool {
      if (pred.kind == Predicate::Kind::kRangeF64) {
        double v = static_cast<double>(col.i64()[row]);
        return v >= pred.flo && v <= pred.fhi;
      }
      if (pred.kind == Predicate::Kind::kRangeI64) {
        int64_t v = col.i64()[row];
        return v >= pred.lo && v <= pred.hi;
      }
      return col.i64()[row] == pred.lo;
    };
    for (oid row = 0; row < col.size(); ++row) {
      if (test(row)) out.push_back(row);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * col.size());
}
BENCHMARK(BM_SelectLoopScalar)->Arg(99)->Arg(499)->Arg(899);

void BM_SelectLoopKernel(benchmark::State& state) {
  const Column& col = *F().ints;
  Predicate pred = Predicate::RangeI64(0, state.range(0));
  for (auto _ : state) {
    std::vector<oid> out;
    SelectDense(col, col.full_range(), pred, nullptr, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * col.size());
}
BENCHMARK(BM_SelectLoopKernel)->Arg(99)->Arg(499)->Arg(899);

// ---- select: candidate list ------------------------------------------------

void BM_SelectCandidates(benchmark::State& state, bool use_kernels) {
  Evaluator eval = MakeEval(use_kernels);
  PlanBuilder b("sel2");
  int s1 = b.Select(F().ints.get(), Predicate::RangeI64(0, 499));
  int s2 = b.Select(F().floats.get(), Predicate::RangeF64(0.0, 0.5), s1);
  QueryPlan plan = b.Result(s2);
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  state.SetItemsProcessed(state.iterations() * F().ints->size());
}
void BM_SelectCandidatesScalar(benchmark::State& s) { BM_SelectCandidates(s, false); }
void BM_SelectCandidatesVectorized(benchmark::State& s) { BM_SelectCandidates(s, true); }
BENCHMARK(BM_SelectCandidatesScalar);
BENCHMARK(BM_SelectCandidatesVectorized);

// ---- fetchjoin gather ------------------------------------------------------

void BM_FetchJoin(benchmark::State& state, bool use_kernels) {
  Evaluator eval = MakeEval(use_kernels);
  PlanBuilder b("fetch");
  int sel = b.Select(F().ints.get(), Predicate::RangeI64(0, 499));
  int f = b.FetchJoin(F().floats.get(), sel);
  QueryPlan plan = b.Result(f);
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  state.SetItemsProcessed(state.iterations() * F().ints->size());
}
void BM_FetchJoinScalar(benchmark::State& s) { BM_FetchJoin(s, false); }
void BM_FetchJoinVectorized(benchmark::State& s) { BM_FetchJoin(s, true); }
BENCHMARK(BM_FetchJoinScalar);
BENCHMARK(BM_FetchJoinVectorized);

// ---- hash-join probe (batched pair emission) -------------------------------

void BM_JoinProbe(benchmark::State& state, bool use_kernels) {
  Evaluator eval = MakeEval(use_kernels);
  PlanBuilder b("join");
  int jn = b.JoinLeaf(F().fk.get(), F().pk.get());
  QueryPlan plan = b.Result(jn);
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  state.SetItemsProcessed(state.iterations() * F().fk->size());
}
void BM_JoinProbeScalar(benchmark::State& s) { BM_JoinProbe(s, false); }
void BM_JoinProbeVectorized(benchmark::State& s) { BM_JoinProbe(s, true); }
BENCHMARK(BM_JoinProbeScalar);
BENCHMARK(BM_JoinProbeVectorized);

// ---- threaded execution of an exchange-parallelized plan -------------------
// range(0) = evaluator worker threads. The serial select+fetch+sum pipeline
// is statically parallelized 8 ways (mitosis-style), yielding 8 independent
// clone subtrees feeding the final pack/merge: real concurrency for the pool.

void BM_ExchangePlanThreads(benchmark::State& state) {
  Evaluator eval = MakeEval(true, static_cast<int>(state.range(0)));
  PlanBuilder b("xplan");
  int sel = b.Select(F().ints.get(), Predicate::RangeI64(0, 499));
  int f = b.FetchJoin(F().floats.get(), sel);
  int agg = b.AggScalar(AggFn::kSum, f);
  HeuristicParallelizer hp(HeuristicConfig{.dop = 8});
  auto plan_or = hp.Parallelize(b.Result(agg));
  APQ_CHECK(plan_or.ok());
  const QueryPlan& plan = plan_or.ValueOrDie();
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  state.SetItemsProcessed(state.iterations() * F().ints->size());
}
// Real time is the relevant axis for thread scaling. On a single-core host
// the >1-thread rows show pure pool overhead; wall-clock speedup needs >= 2
// hardware threads (the acceptance target is >1x on >= 4 cores).
BENCHMARK(BM_ExchangePlanThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// ---- SIMD dispatch tier: per-tier kernel hot loops -------------------------
// Registered dynamically so only tiers the host cpuid reports show up; the
// "scalar" rows route through the all-null tier table and thus measure the
// generic loops (the pre-SIMD baseline — compare BM_SelectLoopKernel).
// Arg(99)/Arg(499) are the 10%/50% selectivity points of the committed
// acceptance criterion (>= 1.5x over the scalar-kernel select at both).

void BM_TierSelectDense(benchmark::State& state, simd::SimdLevel tier) {
  const Column& col = *F().ints;
  Predicate pred = Predicate::RangeI64(0, state.range(0));
  const simd::SimdOps* ops = &simd::OpsFor(tier);
  // The output buffer is reused across iterations (SelectDense appends from
  // the current size): a fresh 8 MB vector per iteration measures glibc mmap
  // churn, not the kernel.
  std::vector<oid> out;
  for (auto _ : state) {
    out.clear();
    SelectDense(col, col.full_range(), pred, nullptr, &out, ops);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * col.size());
}

void BM_TierSelectCandidates(benchmark::State& state, simd::SimdLevel tier) {
  const Column& col = *F().floats;
  // 50%-dense candidate list: every other row, the worst case for the
  // branchy generic loop and the masked-gather path alike.
  static const std::vector<oid>& cands = *[] {
    auto* c = new std::vector<oid>();
    for (oid i = 0; i < F().floats->size(); i += 2) c->push_back(i);
    return c;
  }();
  Predicate pred = Predicate::RangeF64(0.0, 0.5);
  const simd::SimdOps* ops = &simd::OpsFor(tier);
  std::vector<oid> out;
  for (auto _ : state) {
    out.clear();
    uint64_t acc = 0;
    SelectCandidatesSpan(col, col.full_range(), pred, nullptr, cands.data(),
                         cands.size(), &out, &acc, ops);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * cands.size());
}

void BM_TierGather(benchmark::State& state, simd::SimdLevel tier) {
  const Column& col = *F().floats;
  static const std::vector<oid>& ids = *[] {
    Rng rng(7);
    auto* v = new std::vector<oid>(1 << 20);
    for (auto& id : *v) id = rng.Uniform(F().floats->size());
    return v;
  }();
  const simd::SimdOps* ops = &simd::OpsFor(tier);
  std::vector<oid> head;
  ValueVec vals;
  for (auto _ : state) {
    head.clear();
    vals.i64.clear();
    vals.f64.clear();
    APQ_CHECK(GatherRowsSpan(col, ids.data(), ids.size(), col.full_range(),
                             false, AlignPolicy::kStrict, &head, &vals, ops)
                  .ok());
    benchmark::DoNotOptimize(vals.f64.data());
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}

void RegisterTierBenchmarks() {
  for (simd::SimdLevel tier :
       {simd::SimdLevel::kScalar, simd::SimdLevel::kAvx2,
        simd::SimdLevel::kAvx512}) {
    if (!simd::LevelSupported(tier)) continue;
    const std::string suffix = simd::LevelName(tier);
    benchmark::RegisterBenchmark(
        ("BM_TierSelectDense/" + suffix).c_str(),
        [tier](benchmark::State& s) { BM_TierSelectDense(s, tier); })
        ->Arg(99)
        ->Arg(499)
        ->Arg(899);
    benchmark::RegisterBenchmark(
        ("BM_TierSelectCandidates/" + suffix).c_str(),
        [tier](benchmark::State& s) { BM_TierSelectCandidates(s, tier); });
    benchmark::RegisterBenchmark(
        ("BM_TierGather/" + suffix).c_str(),
        [tier](benchmark::State& s) { BM_TierGather(s, tier); });
  }
}

}  // namespace
}  // namespace apq

int main(int argc, char** argv) {
  apq::RegisterTierBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
