// Parallel aggregation subsystem vs whole-column execution (google-benchmark,
// real wall-clock): 2M-row group-by ingest at 10 / 10K / 1M distinct groups
// and hash-join probe throughput, sequential vs morsel-parallel across worker
// counts. Reports per-worker morsel throughput, steal rate, and the worst
// per-operator morsel skew of the last run, mirroring bench_morsels.
//
// The acceptance target (>= 2x group-by ingest at 4 workers) is only
// demonstrable on hosts with >= 4 hardware threads; on smaller containers
// the >1-worker rows show scheduling overhead only.
//
// Run: build/bench_agg [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "exec/evaluator.h"
#include "plan/builder.h"
#include "sched/morsel_scheduler.h"
#include "util/rng.h"

namespace apq {
namespace {

constexpr uint64_t kRows = 1 << 21;  // 2M rows

struct Fixture {
  ColumnPtr groups10, groups10k, groups1m;  // group-by key columns
  ColumnPtr fk, pk;                         // join probe / build columns
  Fixture() {
    Rng rng(42);
    auto keys = [&](int64_t card) {
      std::vector<int64_t> v(kRows);
      for (auto& x : v) x = rng.UniformRange(0, card - 1);
      return v;
    };
    groups10 = Column::MakeInt64("g10", keys(10));
    groups10k = Column::MakeInt64("g10k", keys(10'000));
    groups1m = Column::MakeInt64("g1m", keys(1'000'000));
    fk = Column::MakeInt64("fk", keys(100'000));
    std::vector<int64_t> pkv(100'000);
    for (size_t i = 0; i < pkv.size(); ++i) pkv[i] = static_cast<int64_t>(i);
    pk = Column::MakeInt64("pk", std::move(pkv));
  }

  const Column* group_col(int64_t card) const {
    return card == 10 ? groups10.get()
           : card == 10'000 ? groups10k.get()
                            : groups1m.get();
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

QueryPlan GroupByPlan(int64_t card) {
  PlanBuilder b("group");
  int g = b.GroupByLeaf(F().group_col(card));
  return b.Result(g);
}

QueryPlan ProbePlan() {
  PlanBuilder b("probe");
  int j = b.JoinLeaf(F().fk.get(), F().pk.get());
  return b.Result(j);
}

// Attaches per-worker throughput / steal counters from the scheduler's
// lifetime deltas plus the worst per-operator morsel skew of the last run.
void ReportAggCounters(benchmark::State& state, const MorselScheduler& sched,
                       const std::vector<MorselWorkerStats>& before,
                       uint64_t caller_before, double elapsed_s,
                       const EvalResult& last) {
  const auto after = sched.worker_stats();
  uint64_t tasks = 0, steals = 0;
  for (size_t w = 0; w < after.size(); ++w) {
    const uint64_t wt = after[w].tasks - before[w].tasks;
    tasks += wt;
    steals += after[w].steals - before[w].steals;
    state.counters["w" + std::to_string(w) + "_tasks/s"] =
        elapsed_s > 0 ? static_cast<double>(wt) / elapsed_s : 0;
  }
  const uint64_t ct = sched.caller_tasks() - caller_before;
  tasks += ct;
  state.counters["caller_tasks/s"] =
      elapsed_s > 0 ? static_cast<double>(ct) / elapsed_s : 0;
  state.counters["morsels/s"] =
      elapsed_s > 0 ? static_cast<double>(tasks) / elapsed_s : 0;
  state.counters["steal_pct"] =
      tasks > 0
          ? 100.0 * static_cast<double>(steals) / static_cast<double>(tasks)
          : 0;
  double skew = 0;
  for (const auto& m : last.metrics) {
    if (m.morsels.empty()) continue;
    double total = 0, peak = 0;
    for (const auto& ms : m.morsels) {
      total += ms.wall_ns;
      peak = std::max(peak, ms.wall_ns);
    }
    const double mean = total / static_cast<double>(m.morsels.size());
    skew = std::max(skew, mean > 0 ? peak / mean : 1.0);
  }
  state.counters["max_skew"] = skew;
}

void RunPlanBench(benchmark::State& state, const QueryPlan& plan,
                  bool parallel, int workers) {
  ExecOptions o;
  o.use_morsels = parallel;
  o.use_parallel_agg = parallel;
  o.morsel_workers = workers;
  Evaluator eval(o);
  std::shared_ptr<MorselScheduler> sched;
  std::vector<MorselWorkerStats> before;
  uint64_t caller_before = 0;
  if (parallel) {
    sched = eval.EnsureMorselScheduler();
    before = sched->worker_stats();
    caller_before = sched->caller_tasks();
  }
  EvalResult last;
  auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
    last = std::move(er);
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  state.SetItemsProcessed(state.iterations() * kRows);
  if (parallel) {
    ReportAggCounters(state, *sched, before, caller_before, elapsed_s, last);
  }
}

void BM_GroupByWholeColumn(benchmark::State& state) {
  RunPlanBench(state, GroupByPlan(state.range(0)), /*parallel=*/false, 1);
}
BENCHMARK(BM_GroupByWholeColumn)
    ->Arg(10)
    ->Arg(10'000)
    ->Arg(1'000'000)
    ->UseRealTime();

void BM_GroupByParallel(benchmark::State& state) {
  RunPlanBench(state, GroupByPlan(state.range(0)), /*parallel=*/true,
               static_cast<int>(state.range(1)));
}
// range(0) = distinct groups, range(1) = morsel scheduler workers.
BENCHMARK(BM_GroupByParallel)
    ->ArgsProduct({{10, 10'000, 1'000'000}, {1, 2, 4, 8}})
    ->UseRealTime();

void BM_JoinProbeWholeColumn(benchmark::State& state) {
  RunPlanBench(state, ProbePlan(), /*parallel=*/false, 1);
}
BENCHMARK(BM_JoinProbeWholeColumn)->Arg(1)->UseRealTime();

void BM_JoinProbeParallel(benchmark::State& state) {
  RunPlanBench(state, ProbePlan(), /*parallel=*/true,
               static_cast<int>(state.range(0)));
}
BENCHMARK(BM_JoinProbeParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace apq

BENCHMARK_MAIN();
