#!/usr/bin/env python3
"""Validate APQ per-query profile JSON (profile/profile_json.h schema).

Usage:
    tools/profile_check.py profile.json [--require-adaptive] [--min-queries N]

Accepts either an APQ_PROFILE dump ({"queries": [<doc>, ...]}) or a single
document as served by GET /debug/profile/<id>. Exit codes mirror
bench_trend.py: 0 = schema-valid, 1 = schema violation, 2 = unreadable or
unparseable input.

Checks per document:
  * scalar envelope: positive integer query_id, kind in {plan, adaptive},
    status in {ok, error} (error implies a non-empty error message),
    non-negative wall_ns/time_ns/rows/runs/mutations and the resource
    accounting fields (peak_bytes/cpu_ns/queue_wait_ns/workers/
    parallel_efficiency — zeros with accounting off);
  * lineage: a list; for a successful adaptive query exactly `runs` entries
    (the AdaptiveOutcome invariant), each with run/time_ns/skew fields, a
    victim, an action, and ascending split_rows; `mutations` equals the
    count of entries whose action is not "none"; plain queries have [];
  * profile: null or an object with makespan_ns/utilization and an "ops"
    list whose entries carry the per-operator fields (wall, tuples,
    peak_bytes/cpu_ns/queue_wait_ns, morsel count/skews, p50/p95) and a
    "morsels" histogram list (possibly empty — historical profiles are
    stripped).

Prints a one-line summary (documents, runs, mutations) on success.
"""

import argparse
import json
import sys

DOC_NUMBERS = ("wall_ns", "time_ns", "rows", "runs", "mutations",
               "peak_bytes", "cpu_ns", "queue_wait_ns", "workers",
               "parallel_efficiency")
LINEAGE_NUMBERS = ("run", "time_ns", "wall_ns", "max_morsel_skew",
                   "max_morsel_tuple_skew", "skew_hint_ops", "victim")
OP_NUMBERS = ("node_id", "work_ns", "start_ns", "end_ns", "wall_ns", "core",
              "tuples_in", "tuples_out", "peak_bytes", "cpu_ns",
              "queue_wait_ns", "num_morsels", "morsel_skew",
              "morsel_tuple_skew", "morsel_wall_p50_ns", "morsel_wall_p95_ns")
MORSEL_NUMBERS = ("tuples_in", "tuples_out", "wall_ns", "worker",
                  "domain_begin", "domain_end")
ACTIONS = ("none", "basic", "basic-skew", "medium", "advanced")


def fail(msg):
    print("profile_check: FAIL: %s" % msg, file=sys.stderr)
    return 1


def check_numbers(obj, keys, where, signed=()):
    for key in keys:
        v = obj.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            return '%s: "%s" missing or not a number (%r)' % (where, key, v)
        if v < 0 and key not in signed:
            return '%s: "%s" is negative (%r)' % (where, key, v)
    return None


def check_lineage(doc, where):
    lineage = doc.get("lineage")
    if not isinstance(lineage, list):
        return '%s: "lineage" missing or not a list' % where
    if doc["kind"] == "plan" and lineage:
        return "%s: plain query carries %d lineage entries" % (
            where, len(lineage))
    if doc["kind"] == "adaptive" and doc["status"] == "ok":
        if len(lineage) != doc["runs"]:
            return "%s: %d lineage entries for %d runs" % (
                where, len(lineage), doc["runs"])
    mutations = 0
    for i, entry in enumerate(lineage):
        here = "%s lineage[%d]" % (where, i)
        if not isinstance(entry, dict):
            return "%s: not an object" % here
        err = check_numbers(entry, LINEAGE_NUMBERS, here, signed=("victim",))
        if err:
            return err
        if entry.get("run") != i:
            return "%s: run %r out of order" % (here, entry.get("run"))
        action = entry.get("action")
        if action not in ACTIONS:
            return "%s: unknown action %r" % (here, action)
        if not isinstance(entry.get("skew_aware"), bool):
            return '%s: "skew_aware" missing or not a bool' % here
        rows = entry.get("split_rows")
        if not isinstance(rows, list):
            return '%s: "split_rows" missing or not a list' % here
        if any(not isinstance(r, int) or isinstance(r, bool) for r in rows):
            return '%s: non-integer split row' % here
        if rows != sorted(rows):
            return '%s: split_rows not ascending' % here
        if action != "none":
            mutations += 1
        elif entry.get("victim", -1) != -1 or rows:
            return "%s: action none but victim/split_rows set" % here
    if doc["mutations"] != mutations:
        return '%s: "mutations" %d but %d lineage entries mutated' % (
            where, doc["mutations"], mutations)
    return None


def check_profile(doc, where):
    profile = doc.get("profile", "absent")
    if profile == "absent":
        return '%s: "profile" key missing' % where
    if profile is None:
        return None  # valid for failed queries
    if not isinstance(profile, dict):
        return '%s: "profile" not an object' % where
    err = check_numbers(profile, ("makespan_ns", "utilization"),
                        "%s profile" % where)
    if err:
        return err
    ops = profile.get("ops")
    if not isinstance(ops, list):
        return '%s profile: "ops" missing or not a list' % where
    for i, op in enumerate(ops):
        here = "%s ops[%d]" % (where, i)
        if not isinstance(op, dict):
            return "%s: not an object" % here
        err = check_numbers(op, OP_NUMBERS, here, signed=("node_id", "core"))
        if err:
            return err
        for key in ("kind", "label"):
            if not isinstance(op.get(key), str):
                return '%s: "%s" missing or not a string' % (here, key)
        morsels = op.get("morsels")
        if not isinstance(morsels, list):
            return '%s: "morsels" missing or not a list' % here
        for j, m in enumerate(morsels):
            err = check_numbers(m, MORSEL_NUMBERS, "%s morsels[%d]" % (here, j),
                                signed=("worker",))
            if err:
                return err
    return None


def check_doc(doc, where):
    if not isinstance(doc, dict):
        return "%s: not an object" % where
    qid = doc.get("query_id")
    if not isinstance(qid, int) or isinstance(qid, bool) or qid <= 0:
        return '%s: "query_id" missing or not a positive integer (%r)' % (
            where, qid)
    if doc.get("kind") not in ("plan", "adaptive"):
        return '%s: "kind" is %r, expected "plan" or "adaptive"' % (
            where, doc.get("kind"))
    if doc.get("status") not in ("ok", "error"):
        return '%s: "status" is %r' % (where, doc.get("status"))
    if not isinstance(doc.get("error"), str):
        return '%s: "error" missing or not a string' % where
    if doc["status"] == "error" and not doc["error"]:
        return "%s: status error with empty error message" % where
    err = check_numbers(doc, DOC_NUMBERS, where)
    if err:
        return err
    return check_lineage(doc, where) or check_profile(doc, where)


def check(path, require_adaptive=False, min_queries=1):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("profile_check: cannot load %s: %s" % (path, e),
              file=sys.stderr)
        return 2

    if isinstance(data, dict) and "queries" in data:
        docs = data["queries"]
        if not isinstance(docs, list):
            return fail('"queries" is not a list')
    else:
        docs = [data]

    if len(docs) < min_queries:
        return fail("%d document(s), expected at least %d"
                    % (len(docs), min_queries))

    runs = mutations = adaptive = 0
    for i, doc in enumerate(docs):
        err = check_doc(doc, "doc[%d]" % i)
        if err:
            return fail(err)
        runs += doc["runs"]
        mutations += doc["mutations"]
        adaptive += doc["kind"] == "adaptive"

    if require_adaptive and adaptive == 0:
        return fail("no adaptive query documents (--require-adaptive)")

    print("profile_check: ok: %d document(s) (%d adaptive), %d run(s), "
          "%d mutation(s)" % (len(docs), adaptive, runs, mutations))
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Validate APQ per-query profile JSON.")
    ap.add_argument("profile",
                    help="APQ_PROFILE dump or a /debug/profile/<id> body")
    ap.add_argument("--require-adaptive", action="store_true",
                    help="fail unless at least one adaptive document exists")
    ap.add_argument("--min-queries", type=int, default=1,
                    help="minimum number of documents (default 1)")
    args = ap.parse_args()
    return check(args.profile, args.require_adaptive, args.min_queries)


if __name__ == "__main__":
    sys.exit(main())
