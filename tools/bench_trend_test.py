#!/usr/bin/env python3
"""Unit tests for tools/bench_trend.py (run by ctest as bench_trend_py).

Covers the exit-code contract CI relies on: 0 = no regression, 1 =
regression beyond threshold, 2 = unreadable/malformed input; plus the
filtering rules (aggregate rows ignored, new/gone benchmarks never fail,
items_per_second preferred with a 1/real_time fallback).
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_trend  # noqa: E402


def bench_json(entries):
    return {"benchmarks": entries}


def bm(name, items=None, real_time=None, run_type=None):
    out = {"name": name}
    if items is not None:
        out["items_per_second"] = items
    if real_time is not None:
        out["real_time"] = real_time
    if run_type is not None:
        out["run_type"] = run_type
    return out


class BenchTrendTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, payload, raw=None):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            if raw is not None:
                f.write(raw)
            else:
                json.dump(payload, f)
        return path

    def run_main(self, baseline, fresh, threshold=None):
        argv = ["bench_trend.py", baseline, fresh]
        if threshold is not None:
            argv += ["--threshold", str(threshold)]
        old_argv = sys.argv
        sys.argv = argv
        try:
            return bench_trend.main()
        finally:
            sys.argv = old_argv

    def test_no_regression_exits_zero(self):
        base = self.write("base.json", bench_json([bm("select", items=100.0)]))
        fresh = self.write("fresh.json", bench_json([bm("select", items=95.0)]))
        self.assertEqual(self.run_main(base, fresh), 0)

    def test_regression_beyond_threshold_exits_one(self):
        base = self.write("base.json", bench_json([bm("select", items=100.0)]))
        fresh = self.write("fresh.json", bench_json([bm("select", items=70.0)]))
        self.assertEqual(self.run_main(base, fresh), 1)

    def test_threshold_is_respected(self):
        base = self.write("base.json", bench_json([bm("select", items=100.0)]))
        fresh = self.write("fresh.json", bench_json([bm("select", items=70.0)]))
        self.assertEqual(self.run_main(base, fresh, threshold=0.5), 0)

    def test_new_and_gone_benchmarks_never_fail(self):
        base = self.write("base.json", bench_json(
            [bm("select", items=100.0), bm("retired", items=100.0)]))
        fresh = self.write("fresh.json", bench_json(
            [bm("select", items=100.0), bm("brand_new", items=1.0)]))
        self.assertEqual(self.run_main(base, fresh), 0)

    def test_malformed_json_exits_two(self):
        base = self.write("base.json", bench_json([bm("select", items=1.0)]))
        broken = self.write("broken.json", None, raw="{not json")
        self.assertEqual(self.run_main(base, broken), 2)
        self.assertEqual(self.run_main(broken, base), 2)

    def test_missing_file_exits_two(self):
        base = self.write("base.json", bench_json([bm("select", items=1.0)]))
        missing = os.path.join(self._dir.name, "nope.json")
        self.assertEqual(self.run_main(base, missing), 2)

    def test_aggregate_rows_are_ignored(self):
        # The _mean aggregate regresses hard; the raw repetition does not.
        base = self.write("base.json", bench_json([
            bm("select", items=100.0),
            bm("select_mean", items=100.0),
            bm("select/agg", items=100.0, run_type="aggregate"),
        ]))
        fresh = self.write("fresh.json", bench_json([
            bm("select", items=99.0),
            bm("select_mean", items=1.0),
            bm("select/agg", items=1.0, run_type="aggregate"),
        ]))
        self.assertEqual(self.run_main(base, fresh), 0)
        self.assertEqual(bench_trend.load_throughputs(base),
                         {"select": 100.0})

    def test_real_time_fallback_inverts(self):
        base = self.write("base.json", bench_json(
            [bm("noitems", real_time=10.0)]))
        # 4x slower by real_time => throughput ratio 0.25 => regression.
        fresh = self.write("fresh.json", bench_json(
            [bm("noitems", real_time=40.0)]))
        self.assertEqual(bench_trend.load_throughputs(base),
                         {"noitems": 0.1})
        self.assertEqual(self.run_main(base, fresh), 1)


if __name__ == "__main__":
    unittest.main()
