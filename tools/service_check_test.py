#!/usr/bin/env python3
"""Unit tests for tools/service_check.py (run by ctest as service_check_py).

Covers the exit-code contract the CI service-smoke step relies on:
0 = consistent, 1 = any admission-invariant violation (over-admission,
queue overflow, counter mismatch, inverted percentiles), 2 = unparseable
input; plus the success-path summary line.
"""

import io
import json
import os
import sys
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import service_check  # noqa: E402


def valid_service(**overrides):
    svc = {
        "port": 9500, "sessions": 2, "fleet_workers": 8, "sched_pending": 0,
        "max_concurrent": 4, "max_queue_depth": 64,
        "active": 2, "queued": 3, "queue_depth_peak": 10,
        "admitted_total": 25, "waited_total": 12, "shed_total": 5,
        "promoted_total": 2, "completed_total": 20,
        "requests_total": 31, "responses_total": 25,
        "exec_errors_total": 0, "degraded_total": 7,
        "queue_wait_p50_ns": 1e6, "queue_wait_p99_ns": 9e6,
        "latency_p50_ns": 2e6, "latency_p99_ns": 30e6,
    }
    svc.update(overrides)
    return svc


def run_check(doc, argv=None):
    stdout, stderr = io.StringIO(), io.StringIO()
    sys.argv = ["service_check.py"] + (argv or [])
    sys.stdin = io.StringIO(json.dumps(doc) if isinstance(doc, dict)
                            else doc)
    with redirect_stdout(stdout), redirect_stderr(stderr):
        code = service_check.main()
    return code, stdout.getvalue(), stderr.getvalue()


class ServiceCheckTest(unittest.TestCase):
    def test_valid_document_passes_with_summary(self):
        code, out, _ = run_check({"services": [valid_service()]})
        self.assertEqual(code, 0)
        self.assertIn("OK", out)
        self.assertIn("20 completed", out)
        self.assertIn("5 shed", out)

    def test_empty_services_list_passes_by_default(self):
        code, _, _ = run_check({"services": []})
        self.assertEqual(code, 0)

    def test_min_services_enforced(self):
        code, _, err = run_check({"services": []}, ["--min-services", "1"])
        self.assertEqual(code, 1)
        self.assertIn("expected >= 1", err)

    def test_over_admission_fails(self):
        # active > max_concurrent: the structural bound was violated.
        doc = {"services": [valid_service(active=5)]}
        code, _, err = run_check(doc)
        self.assertEqual(code, 1)
        self.assertIn("max_concurrent", err)

    def test_queue_overflow_fails(self):
        doc = {"services": [valid_service(queued=100,
                                          queue_depth_peak=100)]}
        code, _, err = run_check(doc)
        self.assertEqual(code, 1)
        self.assertIn("max_queue_depth", err)

    def test_admitted_accounting_mismatch_fails(self):
        doc = {"services": [valid_service(admitted_total=99)]}
        code, _, err = run_check(doc)
        self.assertEqual(code, 1)
        self.assertIn("admitted_total", err)

    def test_promoted_beyond_waited_fails(self):
        doc = {"services": [valid_service(promoted_total=13)]}
        code, _, err = run_check(doc)
        self.assertEqual(code, 1)
        self.assertIn("promoted_total", err)

    def test_peak_below_current_queue_fails(self):
        doc = {"services": [valid_service(queue_depth_peak=1)]}
        code, _, err = run_check(doc)
        self.assertEqual(code, 1)
        self.assertIn("queue_depth_peak", err)

    def test_inverted_percentiles_fail(self):
        doc = {"services": [valid_service(latency_p50_ns=50e6)]}
        code, _, err = run_check(doc)
        self.assertEqual(code, 1)
        self.assertIn("latency_p50_ns", err)

    def test_percentiles_are_optional(self):
        svc = valid_service()
        for key in ("queue_wait_p50_ns", "queue_wait_p99_ns",
                    "latency_p50_ns", "latency_p99_ns"):
            del svc[key]
        code, _, _ = run_check({"services": [svc]})
        self.assertEqual(code, 0)

    def test_missing_counter_fails(self):
        svc = valid_service()
        del svc["shed_total"]
        code, _, err = run_check({"services": [svc]})
        self.assertEqual(code, 1)
        self.assertIn("shed_total", err)

    def test_garbage_input_exits_two(self):
        code, _, err = run_check("not json {")
        self.assertEqual(code, 2)
        self.assertIn("unreadable", err)

    def test_missing_services_key_exits_two(self):
        code, _, err = run_check({"schedulers": []})
        self.assertEqual(code, 2)
        self.assertIn("services", err)


if __name__ == "__main__":
    unittest.main()
