#!/usr/bin/env python3
"""Diff a fresh google-benchmark JSON against the committed perf trajectory.

Usage:
    tools/bench_trend.py BENCH_kernels.json build/bench_kernels.json \
        [--threshold 0.20]

Compares items_per_second (falling back to inverted real_time when a
benchmark reports no items counter) for every benchmark name present in both
files and exits non-zero if any throughput regressed by more than
--threshold (default 20%). Benchmarks present in only one file are reported
but never fail the check, so adding or retiring benchmarks does not break
the trend step; aggregate rows (_mean/_median/_stddev/_cv) are ignored in
favour of the raw repetitions.

The committed BENCH_*.json seeds at the repo root are the trajectory:
regenerate them with the same invocation CI uses (see .github/workflows/
ci.yml "Bench smoke") whenever a deliberate perf change lands, and note the
change in CHANGES.md.
"""

import argparse
import json
import sys

AGGREGATE_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")


def load_throughputs(path):
    """name -> throughput (items/s, or 1/real_time as a fallback)."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bm in data.get("benchmarks", []):
        name = bm.get("name", "")
        if not name or name.endswith(AGGREGATE_SUFFIXES):
            continue
        if bm.get("run_type") == "aggregate":
            continue
        if "items_per_second" in bm:
            thr = float(bm["items_per_second"])
        elif bm.get("real_time"):
            thr = 1.0 / float(bm["real_time"])
        else:
            continue
        if thr > 0:
            out[name] = thr
    return out


def main():
    ap = argparse.ArgumentParser(
        description="Fail on >threshold throughput regression vs a "
        "committed benchmark JSON seed.")
    ap.add_argument("baseline", help="committed BENCH_*.json seed")
    ap.add_argument("fresh", help="fresh --benchmark_out JSON")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max tolerated fractional throughput drop "
                    "(default 0.20)")
    args = ap.parse_args()

    # Malformed or unreadable inputs exit 2 (distinct from exit 1 =
    # regression) so CI can tell "the bench run produced garbage" apart from
    # "the code got slower".
    try:
        base = load_throughputs(args.baseline)
        fresh = load_throughputs(args.fresh)
    except (OSError, json.JSONDecodeError) as e:
        print("bench_trend: cannot load benchmark JSON: %s" % e,
              file=sys.stderr)
        return 2

    regressions = []
    rows = []
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            rows.append((name, None, fresh[name], "new"))
            continue
        if name not in fresh:
            rows.append((name, base[name], None, "gone"))
            continue
        ratio = fresh[name] / base[name]
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSED"
            regressions.append((name, ratio))
        elif ratio > 1.0 + args.threshold:
            status = "improved"
        rows.append((name, base[name], fresh[name], status))

    width = max((len(r[0]) for r in rows), default=4)

    def fmt(v):
        if v is None:
            return "        -"
        if v >= 1e9:
            return "%7.2fG/s" % (v / 1e9)
        if v >= 1e6:
            return "%7.2fM/s" % (v / 1e6)
        return "%7.0f/s " % v

    print("%-*s  %10s  %10s  %7s  %s" %
          (width, "benchmark", "baseline", "fresh", "ratio", "status"))
    for name, b, f, status in rows:
        ratio = "" if (b is None or f is None) else "%6.2fx" % (f / b)
        print("%-*s  %10s  %10s  %7s  %s" %
              (width, name, fmt(b), fmt(f), ratio, status))

    if regressions:
        print("\n%d benchmark(s) regressed more than %.0f%%:" %
              (len(regressions), args.threshold * 100), file=sys.stderr)
        for name, ratio in regressions:
            print("  %s: %.2fx of baseline" % (name, ratio), file=sys.stderr)
        return 1
    print("\ntrend ok: no regression beyond %.0f%% across %d shared "
          "benchmark(s)" % (args.threshold * 100,
                            len([r for r in rows if r[3] != "new"
                                 and r[3] != "gone"])))
    return 0


if __name__ == "__main__":
    sys.exit(main())
