#!/usr/bin/env python3
"""Validate an APQ Chrome trace-event JSON (the APQ_TRACE output).

Usage:
    tools/trace_check.py trace.json [--require-cat query,operator]

Checks, exiting non-zero with a message on the first class of failure:
  * the file parses as JSON and has a non-empty "traceEvents" list;
  * every event carries the required keys (ph/name/cat/pid/tid/ts) with
    sane types, "X" events a non-negative "dur";
  * per (pid, tid), complete ("X") events nest properly: sorted by start
    time, no span extends past the end of a still-open enclosing span —
    i.e. the query -> run -> operator -> morsel hierarchy Perfetto renders
    as a flame graph is structurally consistent;
  * optionally (--require-cat) that named categories actually occur, so CI
    can assert an instrumented run produced operator/morsel spans and not
    just an empty skeleton.

Prints a one-line summary (event counts per category, drop count) on
success — the CI trace-smoke step's log line.
"""

import argparse
import collections
import json
import sys

REQUIRED_KEYS = ("ph", "name", "cat", "pid", "tid", "ts")

# Tolerance (µs) for end-vs-start comparisons: TSC-to-µs conversion rounds,
# so a child may appear to outlive its parent by a fraction of a tick.
EPSILON_US = 2.0


def fail(msg):
    print("trace_check: FAIL: %s" % msg, file=sys.stderr)
    return 1


def check(path, require_cats):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail("cannot load %s: %s" % (path, e))

    events = data.get("traceEvents")
    if not isinstance(events, list):
        return fail('"traceEvents" missing or not a list')
    if not events:
        return fail('"traceEvents" is empty (tracing produced no spans)')

    by_thread = collections.defaultdict(list)
    cats = collections.Counter()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail("event %d is not an object" % i)
        for key in REQUIRED_KEYS:
            if key not in ev:
                return fail('event %d ("%s") missing key "%s"'
                            % (i, ev.get("name", "?"), key))
        if ev["ph"] not in ("X", "i"):
            return fail('event %d has unexpected ph "%s"' % (i, ev["ph"]))
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            return fail("event %d has bad ts %r" % (i, ev["ts"]))
        if ev["ph"] == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail('event %d ("%s") has bad dur %r'
                            % (i, ev["name"], dur))
            by_thread[(ev["pid"], ev["tid"])].append(ev)
        cats[ev["cat"]] += 1

    # Stack-consistency per thread: walking spans in start order, each span
    # must close before every span already open around it closes.
    for (pid, tid), spans in by_thread.items():
        spans.sort(key=lambda ev: (ev["ts"], -ev["dur"]))
        open_ends = []  # end timestamps of enclosing spans
        for ev in spans:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while open_ends and open_ends[-1] <= start + EPSILON_US:
                open_ends.pop()
            if open_ends and end > open_ends[-1] + EPSILON_US:
                return fail(
                    'span "%s" on pid %s tid %s [%.3f, %.3f] overlaps the '
                    "end of its enclosing span (%.3f) without nesting"
                    % (ev["name"], pid, tid, start, end, open_ends[-1]))
            open_ends.append(end)

    for cat in require_cats:
        if cats.get(cat, 0) == 0:
            return fail('required category "%s" has no events (got: %s)'
                        % (cat, ", ".join(sorted(cats)) or "none"))

    dropped = 0
    meta = data.get("metadata")
    if isinstance(meta, dict):
        dropped = meta.get("apq_dropped_events", 0)
    summary = ", ".join("%s=%d" % (c, n) for c, n in sorted(cats.items()))
    print("trace_check: ok: %d events across %d thread(s) [%s], %s dropped"
          % (len(events), len(by_thread), summary, dropped))
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Validate an APQ Chrome trace-event JSON.")
    ap.add_argument("trace", help="trace JSON written via APQ_TRACE")
    ap.add_argument("--require-cat", default="",
                    help="comma-separated categories that must be present "
                    "(e.g. operator,morsel)")
    args = ap.parse_args()
    cats = [c for c in args.require_cat.split(",") if c]
    return check(args.trace, cats)


if __name__ == "__main__":
    sys.exit(main())
