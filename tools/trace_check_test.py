#!/usr/bin/env python3
"""Unit tests for tools/trace_check.py (run by ctest as trace_check_py).

Covers the exit-code contract the CI trace-smoke step relies on: 0 = valid
trace, 1 = any structural failure (unreadable file, empty traceEvents,
missing keys, bad ph/ts/dur, nesting violation, absent required category);
plus the success-path summary line with its drop count.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import trace_check  # noqa: E402


def span(name, cat, ts, dur, pid=1, tid=1):
    return {"ph": "X", "name": name, "cat": cat, "pid": pid, "tid": tid,
            "ts": ts, "dur": dur}


def instant(name, cat, ts, pid=1, tid=1):
    return {"ph": "i", "name": name, "cat": cat, "pid": pid, "tid": tid,
            "ts": ts}


def valid_trace():
    # query > run > operator: the nesting hierarchy Perfetto renders.
    return {
        "traceEvents": [
            span("query", "query", 0.0, 1000.0),
            span("execute", "run", 10.0, 900.0),
            span("select", "operator", 20.0, 400.0),
            span("fetchjoin", "operator", 450.0, 400.0),
            instant("steal", "steal", 500.0),
        ],
        "metadata": {"apq_dropped_events": 0},
    }


class TraceCheckTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, payload, raw=None, name="trace.json"):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            if raw is not None:
                f.write(raw)
            else:
                json.dump(payload, f)
        return path

    def run_check(self, path, require_cats=()):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            rc = trace_check.check(path, list(require_cats))
        return rc, out.getvalue(), err.getvalue()

    def run_main(self, argv):
        old_argv = sys.argv
        sys.argv = ["trace_check.py"] + argv
        try:
            out, err = io.StringIO(), io.StringIO()
            with redirect_stdout(out), redirect_stderr(err):
                return trace_check.main()
        finally:
            sys.argv = old_argv

    def test_valid_trace_exits_zero(self):
        path = self.write(valid_trace())
        rc, out, _ = self.run_check(path)
        self.assertEqual(rc, 0)
        self.assertIn("trace_check: ok:", out)

    def test_main_wires_require_cat(self):
        path = self.write(valid_trace())
        self.assertEqual(self.run_main([path, "--require-cat",
                                        "query,operator"]), 0)
        self.assertEqual(self.run_main([path, "--require-cat", "morsel"]), 1)

    def test_missing_file_exits_one(self):
        missing = os.path.join(self._dir.name, "nope.json")
        rc, _, err = self.run_check(missing)
        self.assertEqual(rc, 1)
        self.assertIn("cannot load", err)

    def test_malformed_json_exits_one(self):
        path = self.write(None, raw="{not json")
        self.assertEqual(self.run_check(path)[0], 1)

    def test_empty_trace_events_exits_one(self):
        rc, _, err = self.run_check(self.write({"traceEvents": []}))
        self.assertEqual(rc, 1)
        self.assertIn("empty", err)

    def test_missing_required_key_exits_one(self):
        trace = valid_trace()
        del trace["traceEvents"][2]["cat"]
        rc, _, err = self.run_check(self.write(trace))
        self.assertEqual(rc, 1)
        self.assertIn('missing key "cat"', err)

    def test_bad_phase_and_negative_dur_exit_one(self):
        trace = valid_trace()
        trace["traceEvents"][0]["ph"] = "B"
        self.assertEqual(self.run_check(self.write(trace))[0], 1)

        trace = valid_trace()
        trace["traceEvents"][1]["dur"] = -5.0
        self.assertEqual(self.run_check(self.write(trace))[0], 1)

    def test_nesting_violation_exits_one(self):
        trace = valid_trace()
        # An operator span that starts inside the run span but outlives it
        # by far more than the tick-rounding epsilon.
        trace["traceEvents"].append(
            span("straddler", "operator", 800.0, 5000.0))
        rc, _, err = self.run_check(self.write(trace))
        self.assertEqual(rc, 1)
        self.assertIn("without nesting", err)

    def test_sibling_spans_do_not_trip_nesting(self):
        # Two back-to-back operators under one run are fine even when they
        # abut within the epsilon.
        trace = valid_trace()
        trace["traceEvents"].append(
            span("select2", "operator", 850.1, 50.0))
        self.assertEqual(self.run_check(self.write(trace))[0], 0)

    def test_required_category_missing_exits_one(self):
        path = self.write(valid_trace())
        rc, _, err = self.run_check(path, require_cats=["morsel"])
        self.assertEqual(rc, 1)
        self.assertIn('required category "morsel"', err)

    def test_summary_reports_drop_count(self):
        trace = valid_trace()
        trace["metadata"]["apq_dropped_events"] = 17
        rc, out, _ = self.run_check(self.write(trace))
        self.assertEqual(rc, 0)
        self.assertIn("17 dropped", out)


if __name__ == "__main__":
    unittest.main()
