#!/usr/bin/env python3
"""Unit tests for tools/profile_check.py (run by ctest as profile_check_py).

Covers the exit-code contract the CI profile-smoke step relies on: 0 =
schema-valid, 1 = any schema violation (bad envelope scalars, missing
resource-accounting fields, lineage/mutation mismatch, malformed ops),
2 = unreadable or unparseable input; plus the success-path summary line
and the --require-adaptive / --min-queries knobs.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import profile_check  # noqa: E402


def op(node_id=0, kind="select"):
    return {"node_id": node_id, "kind": kind, "label": "l_qty < 24",
            "work_ns": 1000.0, "start_ns": 0.0, "end_ns": 500.0,
            "wall_ns": 500.0, "core": 0, "tuples_in": 6000,
            "tuples_out": 1200, "peak_bytes": 4800, "cpu_ns": 450.0,
            "queue_wait_ns": 10.0, "num_morsels": 2, "morsel_skew": 1.1,
            "morsel_tuple_skew": 1.0, "morsel_wall_p50_ns": 200.0,
            "morsel_wall_p95_ns": 300.0,
            "morsels": [{"tuples_in": 3000, "tuples_out": 600,
                         "wall_ns": 250.0, "worker": 0,
                         "domain_begin": 0, "domain_end": 3000},
                        {"tuples_in": 3000, "tuples_out": 600,
                         "wall_ns": 250.0, "worker": 1,
                         "domain_begin": 3000, "domain_end": 6000}]}


def lineage_entry(run, action="none", victim=-1, split_rows=None):
    return {"run": run, "time_ns": 1000.0, "wall_ns": 900.0,
            "max_morsel_skew": 1.2, "max_morsel_tuple_skew": 1.0,
            "skew_hint_ops": 0, "victim": victim, "action": action,
            "skew_aware": True, "split_rows": split_rows or []}


def plan_doc(query_id=1):
    return {"query_id": query_id, "kind": "plan", "status": "ok",
            "error": "", "wall_ns": 1000.0, "time_ns": 800.0, "rows": 1200,
            "runs": 1, "mutations": 0, "peak_bytes": 9600, "cpu_ns": 700.0,
            "queue_wait_ns": 15.0, "workers": 4,
            "parallel_efficiency": 0.175, "adaptive": None, "lineage": [],
            "profile": {"makespan_ns": 1000.0, "utilization": 0.5,
                        "ops": [op()]}}


def adaptive_doc(query_id=2):
    doc = plan_doc(query_id)
    doc["kind"] = "adaptive"
    doc["runs"] = 2
    doc["mutations"] = 1
    doc["adaptive"] = {"serial_time_ns": 2000.0, "gme_time_ns": 800.0,
                       "gme_run": 1, "best_run": 1, "best_time_ns": 800.0,
                       "total_runs": 2, "skew_mutations": 0,
                       "speedup": 2.5}
    doc["lineage"] = [lineage_entry(0, "basic", victim=0,
                                    split_rows=[1000, 2000]),
                      lineage_entry(1)]
    return doc


class ProfileCheckTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, payload, raw=None, name="profile.json"):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            if raw is not None:
                f.write(raw)
            else:
                json.dump(payload, f)
        return path

    def run_check(self, path, **kwargs):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            rc = profile_check.check(path, **kwargs)
        return rc, out.getvalue(), err.getvalue()

    def run_main(self, argv):
        old_argv = sys.argv
        sys.argv = ["profile_check.py"] + argv
        try:
            out, err = io.StringIO(), io.StringIO()
            with redirect_stdout(out), redirect_stderr(err):
                return profile_check.main()
        finally:
            sys.argv = old_argv

    def test_single_document_exits_zero(self):
        rc, out, _ = self.run_check(self.write(plan_doc()))
        self.assertEqual(rc, 0)
        self.assertIn("profile_check: ok:", out)

    def test_dump_with_queries_list_exits_zero(self):
        dump = {"queries": [plan_doc(1), adaptive_doc(2)]}
        rc, out, _ = self.run_check(self.write(dump))
        self.assertEqual(rc, 0)
        self.assertIn("2 document(s) (1 adaptive)", out)

    def test_main_wires_flags(self):
        dump = {"queries": [plan_doc(1)]}
        path = self.write(dump)
        self.assertEqual(self.run_main([path]), 0)
        self.assertEqual(self.run_main([path, "--require-adaptive"]), 1)
        self.assertEqual(self.run_main([path, "--min-queries", "2"]), 1)

    def test_missing_file_exits_two(self):
        missing = os.path.join(self._dir.name, "nope.json")
        rc, _, err = self.run_check(missing)
        self.assertEqual(rc, 2)
        self.assertIn("cannot load", err)

    def test_malformed_json_exits_two(self):
        self.assertEqual(self.run_check(self.write(None, raw="{no"))[0], 2)

    def test_missing_resource_field_exits_one(self):
        doc = plan_doc()
        del doc["peak_bytes"]
        rc, _, err = self.run_check(self.write(doc))
        self.assertEqual(rc, 1)
        self.assertIn("peak_bytes", err)

    def test_missing_op_resource_field_exits_one(self):
        doc = plan_doc()
        del doc["profile"]["ops"][0]["cpu_ns"]
        rc, _, err = self.run_check(self.write(doc))
        self.assertEqual(rc, 1)
        self.assertIn("cpu_ns", err)

    def test_negative_resource_field_exits_one(self):
        doc = plan_doc()
        doc["queue_wait_ns"] = -1.0
        self.assertEqual(self.run_check(self.write(doc))[0], 1)

    def test_bad_query_id_exits_one(self):
        doc = plan_doc()
        doc["query_id"] = 0
        self.assertEqual(self.run_check(self.write(doc))[0], 1)

    def test_error_status_requires_message(self):
        doc = plan_doc()
        doc["status"] = "error"
        self.assertEqual(self.run_check(self.write(doc))[0], 1)
        doc["error"] = "boom"
        doc["profile"] = None
        self.assertEqual(self.run_check(self.write(doc))[0], 0)

    def test_lineage_run_count_mismatch_exits_one(self):
        doc = adaptive_doc()
        doc["runs"] = 3
        rc, _, err = self.run_check(self.write(doc))
        self.assertEqual(rc, 1)
        self.assertIn("lineage entries", err)

    def test_mutation_count_mismatch_exits_one(self):
        doc = adaptive_doc()
        doc["mutations"] = 2
        rc, _, err = self.run_check(self.write(doc))
        self.assertEqual(rc, 1)
        self.assertIn("mutated", err)

    def test_unsorted_split_rows_exit_one(self):
        doc = adaptive_doc()
        doc["lineage"][0]["split_rows"] = [2000, 1000]
        self.assertEqual(self.run_check(self.write(doc))[0], 1)

    def test_stripped_morsels_are_valid(self):
        doc = plan_doc()
        doc["profile"]["ops"][0]["morsels"] = []
        self.assertEqual(self.run_check(self.write(doc))[0], 0)


if __name__ == "__main__":
    unittest.main()
