#!/usr/bin/env python3
"""Validate APQ worker telemetry JSON (GET /debug/workers).

Usage:
    tools/workers_check.py [workers.json] [--min-schedulers N]

Reads the /debug/workers body from the named file, or from stdin when no
file is given (so CI can pipe `curl .../debug/workers` straight in). Exit
codes mirror bench_trend.py: 0 = consistent, 1 = consistency violation,
2 = unreadable or unparseable input.

Checks per scheduler:
  * envelope: non-negative workers/uptime_ns/pending/caller_tasks/
    caller_busy_ns/total_tasks, worker_list length == workers;
  * per worker: non-negative counters, steals <= tasks (a steal IS a task),
    busy_ns <= uptime_ns (+5% slack for the unsynchronized reads),
    busy_ns + idle_ns <= uptime_ns (+5% slack) -- occupancy cannot exceed
    the scheduler's wall-clock life;
  * totals: sum(worker tasks) + caller_tasks ~= total_tasks (the counters
    are read at slightly different instants mid-run, so a small drift
    window is tolerated);
  * flight recorder: t_ns strictly ascending, tasks/steals monotonically
    non-decreasing (cumulative counters never go backwards).

Prints a one-line summary (schedulers, workers, tasks, steals) on success.
"""

import argparse
import json
import sys

SCHED_NUMBERS = ("workers", "uptime_ns", "pending", "caller_tasks",
                 "caller_busy_ns", "total_tasks")
WORKER_NUMBERS = ("worker", "tasks", "steals", "steal_fails", "busy_ns",
                  "idle_ns")
FLIGHT_NUMBERS = ("t_ns", "pending", "tasks", "steals")

# Worker occupancy is read without stopping the fleet; allow a small
# overshoot before calling uptime-vs-busy inconsistent.
SLACK = 1.05


def fail(msg):
    print("workers_check: FAIL: %s" % msg, file=sys.stderr)
    return 1


def check_numbers(obj, keys, where):
    for key in keys:
        v = obj.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            return '%s: "%s" missing or not a number (%r)' % (where, key, v)
        if v < 0:
            return '%s: "%s" is negative (%r)' % (where, key, v)
    return None


def check_scheduler(sched, where):
    if not isinstance(sched, dict):
        return "%s: not an object" % where
    err = check_numbers(sched, SCHED_NUMBERS, where)
    if err:
        return err
    workers = sched.get("worker_list")
    if not isinstance(workers, list):
        return '%s: "worker_list" missing or not a list' % where
    if len(workers) != sched["workers"]:
        return "%s: %d worker_list entries for %d workers" % (
            where, len(workers), sched["workers"])
    uptime = sched["uptime_ns"]
    worker_tasks = 0
    for i, w in enumerate(workers):
        here = "%s worker_list[%d]" % (where, i)
        if not isinstance(w, dict):
            return "%s: not an object" % here
        err = check_numbers(w, WORKER_NUMBERS, here)
        if err:
            return err
        if w["worker"] != i:
            return "%s: worker %r out of order" % (here, w["worker"])
        if w["steals"] > w["tasks"]:
            return "%s: %d steals exceed %d tasks" % (
                here, w["steals"], w["tasks"])
        if w["busy_ns"] > uptime * SLACK:
            return "%s: busy_ns %d exceeds scheduler uptime %d" % (
                here, w["busy_ns"], uptime)
        if w["busy_ns"] + w["idle_ns"] > uptime * SLACK:
            return "%s: busy+idle %d exceeds scheduler uptime %d" % (
                here, w["busy_ns"] + w["idle_ns"], uptime)
        worker_tasks += w["tasks"]
    # The per-worker counters, caller_tasks, and total_tasks are separate
    # relaxed reads taken microseconds apart while the fleet keeps running;
    # only tasks completing inside that window can drift the sum.
    total = sched["total_tasks"]
    drift = abs(worker_tasks + sched["caller_tasks"] - total)
    if drift > max(64, total * (SLACK - 1)):
        return "%s: worker tasks %d + caller %d vs total_tasks %d" % (
            where, worker_tasks, sched["caller_tasks"], total)
    flight = sched.get("flight")
    if not isinstance(flight, list):
        return '%s: "flight" missing or not a list' % where
    for i, f in enumerate(flight):
        here = "%s flight[%d]" % (where, i)
        if not isinstance(f, dict):
            return "%s: not an object" % here
        err = check_numbers(f, FLIGHT_NUMBERS, here)
        if err:
            return err
        if i > 0:
            prev = flight[i - 1]
            if f["t_ns"] <= prev["t_ns"]:
                return "%s: t_ns not ascending" % here
            if f["tasks"] < prev["tasks"] or f["steals"] < prev["steals"]:
                return "%s: cumulative counter went backwards" % here
    return None


def check(path, min_schedulers=0):
    try:
        if path is None or path == "-":
            data = json.load(sys.stdin)
        else:
            with open(path) as f:
                data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("workers_check: cannot load %s: %s" % (path or "<stdin>", e),
              file=sys.stderr)
        return 2

    if not isinstance(data, dict):
        return fail("top level is not an object")
    scheds = data.get("schedulers")
    if not isinstance(scheds, list):
        return fail('"schedulers" missing or not a list')
    if len(scheds) < min_schedulers:
        return fail("%d scheduler(s), expected at least %d" % (
            len(scheds), min_schedulers))

    workers = tasks = steals = 0
    for i, sched in enumerate(scheds):
        err = check_scheduler(sched, "schedulers[%d]" % i)
        if err:
            return fail(err)
        workers += sched["workers"]
        tasks += sched["total_tasks"]
        steals += sum(w["steals"] for w in sched["worker_list"])

    print("workers_check: ok: %d scheduler(s), %d worker(s), %d task(s), "
          "%d steal(s)" % (len(scheds), workers, tasks, steals))
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Validate APQ /debug/workers telemetry JSON.")
    ap.add_argument("workers", nargs="?", default=None,
                    help="a /debug/workers body (default: stdin)")
    ap.add_argument("--min-schedulers", type=int, default=0,
                    help="minimum number of schedulers (default 0)")
    args = ap.parse_args()
    return check(args.workers, args.min_schedulers)


if __name__ == "__main__":
    sys.exit(main())
