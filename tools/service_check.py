#!/usr/bin/env python3
"""Validate APQ query-service telemetry JSON (GET /debug/service).

Usage:
    tools/service_check.py [service.json] [--min-services N]

Reads the /debug/service body from the named file, or from stdin when no
file is given (so CI can pipe `curl .../debug/service` straight in). Exit
codes mirror bench_trend.py: 0 = consistent, 1 = consistency violation,
2 = unreadable or unparseable input.

Checks per service:
  * envelope: non-negative port/sessions/fleet_workers/limits/counters,
    max_concurrent >= 1;
  * admission bounds: active <= max_concurrent (the executor fleet is that
    size — more would mean over-admission), queued <= max_queue_depth +
    max_concurrent (handoff passes through the queue, so each free slot
    extends the bound by one), queue_depth_peak >= queued;
  * counter consistency: admitted_total = completed_total + active + queued
    (every admitted request is exactly one of finished / running / waiting),
    promoted_total <= waited_total <= admitted_total, responses_total <=
    requests_total, and requests split cleanly into responses sent so far
    plus requests still inside the service;
  * percentiles (when present): non-negative, p50 <= p99.
"""

import argparse
import json
import sys

SERVICE_NUMBERS = ("port", "sessions", "fleet_workers", "sched_pending",
                   "max_concurrent", "max_queue_depth", "active", "queued",
                   "queue_depth_peak", "admitted_total", "waited_total",
                   "shed_total", "promoted_total", "completed_total",
                   "requests_total", "responses_total", "exec_errors_total",
                   "degraded_total")
PERCENTILES = ("queue_wait_p50_ns", "queue_wait_p99_ns", "latency_p50_ns",
               "latency_p99_ns")


def fail(msg):
    print("service_check: FAIL: %s" % msg, file=sys.stderr)
    return 1


def check_numbers(obj, keys, where, required=True):
    for key in keys:
        v = obj.get(key)
        if v is None and not required:
            continue
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            return '%s: "%s" missing or not a number (%r)' % (where, key, v)
        if v < 0:
            return '%s: "%s" is negative (%r)' % (where, key, v)
    return None


def check_service(svc, where):
    if not isinstance(svc, dict):
        return "%s: not an object" % where
    err = check_numbers(svc, SERVICE_NUMBERS, where)
    if err:
        return err
    err = check_numbers(svc, PERCENTILES, where, required=False)
    if err:
        return err

    if svc["max_concurrent"] < 1:
        return "%s: max_concurrent < 1 (%r)" % (where, svc["max_concurrent"])
    if svc["active"] > svc["max_concurrent"]:
        return "%s: active (%r) exceeds max_concurrent (%r) -- the bound " \
               "is structural, this must never happen" % (
                   where, svc["active"], svc["max_concurrent"])
    depth_bound = svc["max_queue_depth"] + svc["max_concurrent"]
    if svc["queued"] > depth_bound:
        return "%s: queued (%r) exceeds max_queue_depth + max_concurrent " \
               "(%r)" % (where, svc["queued"], depth_bound)
    if svc["queue_depth_peak"] < svc["queued"]:
        return "%s: queue_depth_peak (%r) below current queued (%r)" % (
            where, svc["queue_depth_peak"], svc["queued"])

    # Every admitted request is exactly one of: finished, running, waiting.
    accounted = svc["completed_total"] + svc["active"] + svc["queued"]
    if svc["admitted_total"] != accounted:
        return "%s: admitted_total (%r) != completed + active + queued " \
               "(%r)" % (where, svc["admitted_total"], accounted)
    if svc["promoted_total"] > svc["waited_total"]:
        return "%s: promoted_total (%r) exceeds waited_total (%r)" % (
            where, svc["promoted_total"], svc["waited_total"])
    if svc["waited_total"] > svc["admitted_total"]:
        return "%s: waited_total (%r) exceeds admitted_total (%r)" % (
            where, svc["waited_total"], svc["admitted_total"])
    if svc["responses_total"] > svc["requests_total"]:
        return "%s: responses_total (%r) exceeds requests_total (%r)" % (
            where, svc["responses_total"], svc["requests_total"])

    for lo, hi in (("queue_wait_p50_ns", "queue_wait_p99_ns"),
                   ("latency_p50_ns", "latency_p99_ns")):
        if lo in svc and hi in svc and svc[lo] > svc[hi]:
            return "%s: %s (%r) exceeds %s (%r)" % (
                where, lo, svc[lo], hi, svc[hi])
    return None


def main():
    ap = argparse.ArgumentParser(
        description="Validate /debug/service JSON consistency.")
    ap.add_argument("file", nargs="?", help="JSON file (default: stdin)")
    ap.add_argument("--min-services", type=int, default=0,
                    help="fail unless at least N services are live")
    args = ap.parse_args()

    try:
        if args.file:
            with open(args.file) as f:
                doc = json.load(f)
        else:
            doc = json.load(sys.stdin)
    except (OSError, json.JSONDecodeError) as e:
        print("service_check: unreadable input: %s" % e, file=sys.stderr)
        return 2

    if not isinstance(doc, dict) or "services" not in doc:
        print("service_check: missing top-level \"services\" list",
              file=sys.stderr)
        return 2
    services = doc["services"]
    if not isinstance(services, list):
        print("service_check: \"services\" is not a list", file=sys.stderr)
        return 2
    if len(services) < args.min_services:
        return fail("expected >= %d live services, got %d" % (
            args.min_services, len(services)))

    for i, svc in enumerate(services):
        err = check_service(svc, "services[%d]" % i)
        if err:
            return fail(err)

    total_done = sum(s["completed_total"] for s in services)
    total_shed = sum(s["shed_total"] for s in services)
    print("service_check: OK: %d service(s), %d completed, %d shed, "
          "%d promoted" % (len(services), total_done, total_shed,
                           sum(s["promoted_total"] for s in services)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
