#!/usr/bin/env python3
"""Fail when an APQ_* environment knob and docs/reference.md disagree.

Usage:
    tools/knob_doc_check.py [--src DIR] [--doc FILE]

Scans the C++ sources for environment-knob reads — `getenv("APQ_...")` and
the hardened-path wrapper `ValidatedEnvPath("APQ_...")` — and diffs the
result against the knob names documented in docs/reference.md. The check is
bidirectional: an undocumented knob fails (someone added a knob without
telling operators), and a documented-but-gone knob fails too (the reference
would be lying). Registered as a ctest (knob_doc_check_py), so the build
itself enforces that docs/reference.md stays the single complete inventory.

Knob *reads* are matched, not mere mentions: a macro like APQ_CHECK or a
header guard never trips the scan. Exit codes mirror bench_trend.py:
0 = in sync, 1 = drift, 2 = missing inputs.
"""

import argparse
import os
import re
import sys

# A knob read is one of the two idioms every APQ_* env access uses. String
# literals only: concatenated or computed names would defeat any grep, and
# the codebase deliberately has none.
READ_RE = re.compile(
    r'(?:getenv|ValidatedEnvPath)\s*\(\s*"(APQ_[A-Z0-9_]+)"')

# A knob is "documented" when reference.md names it as inline code. This is
# deliberately stricter than a bare-word mention: prose like "unlike
# APQ_FOO..." about a removed knob should not satisfy the check.
DOC_RE = re.compile(r'`(APQ_[A-Z0-9_]+)(?:=[^`]*)?`')


def scan_sources(src_dir):
    """knob name -> first file:line that reads it."""
    reads = {}
    for root, _, files in sorted(os.walk(src_dir)):
        for name in sorted(files):
            if not name.endswith((".cc", ".h", ".cpp", ".hpp")):
                continue
            path = os.path.join(root, name)
            with open(path, encoding="utf-8", errors="replace") as f:
                for lineno, line in enumerate(f, 1):
                    for m in READ_RE.finditer(line):
                        reads.setdefault(
                            m.group(1),
                            "%s:%d" % (os.path.relpath(path, src_dir),
                                       lineno))
    return reads


def scan_docs(doc_path):
    with open(doc_path, encoding="utf-8") as f:
        return set(DOC_RE.findall(f.read()))


def main():
    ap = argparse.ArgumentParser(
        description="Diff APQ_* env-knob reads against docs/reference.md.")
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap.add_argument("--src", default=os.path.join(repo, "src"))
    ap.add_argument("--doc",
                    default=os.path.join(repo, "docs", "reference.md"))
    args = ap.parse_args()

    if not os.path.isdir(args.src):
        print("knob_doc_check: no source dir at %s" % args.src,
              file=sys.stderr)
        return 2
    if not os.path.isfile(args.doc):
        print("knob_doc_check: no reference doc at %s" % args.doc,
              file=sys.stderr)
        return 2

    reads = scan_sources(args.src)
    documented = scan_docs(args.doc)

    failures = []
    for knob in sorted(set(reads) - documented):
        failures.append("undocumented knob %s (read at %s) -- add it to %s"
                        % (knob, reads[knob], os.path.basename(args.doc)))
    for knob in sorted(documented - set(reads)):
        failures.append("stale doc entry %s -- no source reads it; drop it "
                        "from %s" % (knob, os.path.basename(args.doc)))

    if failures:
        for f in failures:
            print("knob_doc_check: FAIL: %s" % f, file=sys.stderr)
        return 1

    print("knob_doc_check: OK: %d knobs read in src/, all documented"
          % len(reads))
    return 0


if __name__ == "__main__":
    sys.exit(main())
